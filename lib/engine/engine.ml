type cache_entry =
  | E_exact of {
      e_lambda : Ratio.t;
      e_cycle : int list;
      e_components : int;
      e_algorithm : string;
      e_cert : Ratio.t option;
    }
  | E_approx of {
      a_lo : Ratio.t;
      a_hi : Ratio.t;
      a_cycle : int list;
      a_eps : float;
      a_scale : float;
      a_components : int;
      a_tests : int;
      a_rounds : int;
      a_converged : bool;
    }

type outcome =
  | Solved of {
      lambda : Ratio.t;
      cycle : int list;
      components : int;
      algorithm : string;
      cached : bool;
      fallbacks : int;
      certified : bool;
      exact : Ratio.t option;
          (* mode=exact: the rational certificate recomputed from the
             witness cycle's integer sums (Verify.rational_certificate) *)
    }
  | Approximate of {
      lo : Ratio.t;
      hi : Ratio.t;
      cycle : int list;
      eps : float;
      scale : float;
      components : int;
      tests : int;
      rounds : int;
      certified : bool;
      cached : bool;
      fallback : bool;
      verified : bool;
    }
  | Acyclic
  | Timeout of { partial : Ratio.t option; attempted : string list }
  | Rejected of string

type response = {
  id : int;
  path : string;
  outcome : outcome;
  wall_ms : float;
}

let sp_request = Obs.intern "engine.request"
let sp_cache_hit = Obs.intern "engine.cache_hit"
let sp_cache_miss = Obs.intern "engine.cache_miss"

type t = {
  exec : Executor.t;
  cache : (Request.key, cache_entry) Lru.t;
  telemetry : Telemetry.t; (* engine lifetime; coordinator-only access *)
  latency : Metrics.histogram; (* per-request wall ms; coordinator-only *)
  lat_reg : Metrics.t; (* owns [latency], merged into snapshots *)
  now : unit -> float;
}

let create ?(jobs = 1) ?(cache_size = 256) ?(now = Unix.gettimeofday) () =
  let lat_reg = Metrics.create () in
  {
    exec = Executor.create ~jobs;
    cache = Lru.create ~capacity:cache_size;
    telemetry = Telemetry.create ();
    latency = Metrics.histogram lat_reg "ocr_solve_latency_ms";
    lat_reg;
    now;
  }

let jobs t = Executor.jobs t.exec
let pool t = t.exec
let resize_cache t capacity = Lru.resize t.cache capacity

let telemetry t = t.telemetry

let shutdown t = Executor.shutdown t.exec

(* One coherent registry for the serve/stream exporters: the
   deterministic telemetry counters, the solve-latency histogram, and
   the executor pool-health sample, in that fixed order. *)
let metrics_snapshot t =
  let m = Metrics.create () in
  let tel = t.telemetry in
  let c name v = Metrics.add (Metrics.counter m name) v in
  c "ocr_requests_total" tel.Telemetry.requests;
  c "ocr_solved_total" tel.Telemetry.solved;
  c "ocr_cache_hits_total" tel.Telemetry.cache_hits;
  c "ocr_cache_misses_total" tel.Telemetry.cache_misses;
  c "ocr_cache_collisions_total" tel.Telemetry.collisions;
  c "ocr_acyclic_total" tel.Telemetry.acyclic;
  c "ocr_timeouts_total" tel.Telemetry.timeouts;
  c "ocr_rejected_total" tel.Telemetry.rejected;
  c "ocr_fallbacks_total" tel.Telemetry.fallbacks;
  c "ocr_approx_total" tel.Telemetry.approx;
  c "ocr_approx_iterations" tel.Telemetry.approx_iterations;
  c "ocr_exact_total" tel.Telemetry.exact;
  Metrics.merge_into ~into:m t.lat_reg;
  Executor.sample_metrics t.exec m;
  m

(* ------------------------------------------------------------------ *)
(* deadline / portfolio policy                                         *)
(* ------------------------------------------------------------------ *)

(* The Auto policy: Howard first (the study's overall winner) under an
   iteration budget generous enough that it virtually always converges
   (its average iteration count is conjectured O(lg n), see bench E7);
   on a blowout fall back to HO under a level budget, and finally to
   Karp2 — exact, Θ(n) space, bounded Θ(nm) work — with no iteration
   budget, so the portfolio always terminates with an exact optimum
   unless the request deadline fires first. *)
let auto_portfolio g =
  let n = Digraph.n g in
  [
    (Registry.Howard, Some (50 + (n / 16)));
    (Registry.Ho, Some (max 64 (n / 8)));
    (Registry.Karp2, None);
  ]

(* ------------------------------------------------------------------ *)
(* the certified approximation lane                                    *)
(* ------------------------------------------------------------------ *)

(* One approx-lane answer: a certified interval around λ*.  Used for
   algorithm=approx requests, and — with [fallback] — as the engine's
   deadline fallback for Auto requests carrying approx-eps.  The lane
   degrades to a sound (wider, uncertified) interval under budget
   pressure instead of raising, so this path never times out. *)
let solve_approx t ~inner_pool tel (req : Request.t) ~deadline_at ~fallback =
  let spec = req.Request.spec in
  let eps =
    Option.value spec.Request.approx_eps ~default:Approx.default_eps
  in
  let budget =
    Option.map
      (fun deadline_at -> Budget.create ~now:t.now ~deadline_at ())
      deadline_at
  in
  let stats = Stats.create () in
  let t0 = t.now () in
  match
    Approx.solve ~stats ?budget ?pool:inner_pool
      ~problem:spec.Request.problem ~objective:spec.Request.objective ~eps
      req.Request.graph
  with
  | exception Invalid_argument msg -> Rejected msg
  | None -> Acyclic
  | Some cert ->
    let wall_ms = (t.now () -. t0) *. 1000.0 in
    Telemetry.record_ops tel stats;
    Telemetry.record_run tel "approx" ~wall_ms;
    tel.Telemetry.approx_iterations <-
      tel.Telemetry.approx_iterations + cert.Approx.rounds;
    Approximate
      {
        lo = cert.Approx.lo;
        hi = cert.Approx.hi;
        cycle = cert.Approx.witness;
        eps;
        scale = cert.Approx.scale;
        components = cert.Approx.components;
        tests = cert.Approx.tests;
        rounds = cert.Approx.rounds;
        certified = cert.Approx.converged;
        cached = false;
        fallback;
        verified = false;
      }

(* ------------------------------------------------------------------ *)
(* fresh solve: per-SCC fan-out, portfolio, deadline                   *)
(* ------------------------------------------------------------------ *)

(* Mirrors Solver.solve exactly (same component order, same
   tie-breaking) so that engine results are indistinguishable from a
   fresh [Solver.solve ~algorithm] — a property the test suite checks —
   while fanning independent SCC subproblems across the executor.

   [inner_pool] is the arbitration verdict from the caller: [Some p]
   lets this request parallelize internally (component fan-out, and
   Howard's chunked sweep inside a component); [None] keeps the whole
   request on the calling domain, which is what {!run_batch} picks
   when the batch-level fan-out already saturates the pool — nesting
   both levels would only queue overhead.  Purely a placement
   decision: outcomes are bit-identical either way. *)
let solve_fresh t ~inner_pool tel (req : Request.t) =
  let spec = req.Request.spec in
  let deadline_at =
    Option.map (fun ms -> t.now () +. (ms /. 1000.0)) spec.Request.deadline_ms
  in
  if spec.Request.algorithm = Request.Approx then
    solve_approx t ~inner_pool tel req ~deadline_at ~fallback:false
  else
  match Solver.preflight ~problem:spec.Request.problem req.Request.graph with
  | exception Invalid_argument msg -> Rejected msg
  | () ->
    let g_min =
      match spec.Request.objective with
      | Solver.Minimize -> req.Request.graph
      | Solver.Maximize -> Digraph.negate_weights req.Request.graph
    in
    let restore lambda =
      match spec.Request.objective with
      | Solver.Minimize -> lambda
      | Solver.Maximize -> Ratio.neg lambda
    in
    let scc = Scc.compute g_min in
    (* the one-pass partition replaces per-component Digraph.induced
       scans; computed once here, the subgraphs are reused by every
       portfolio attempt instead of being rebuilt per fallback *)
    let subs = Array.to_list (Scc.partition g_min scc) in
    if subs = [] then Acyclic
    else begin
      let runner_of alg =
        match spec.Request.problem with
        | Solver.Cycle_mean -> Registry.minimum_cycle_mean alg
        | Solver.Cycle_ratio -> Registry.minimum_cycle_ratio alg
      in
      let attempts =
        match spec.Request.algorithm with
        | Request.Fixed a -> [ (Registry.name a, None, runner_of a) ]
        | Request.Exact ->
          (* direct dispatch (not through Registry.exact_lane) so the
             linker keeps Stern_brocot — and its lane registration —
             in every binary that links the engine *)
          let run =
            match spec.Request.problem with
            | Solver.Cycle_mean -> Stern_brocot.minimum_cycle_mean
            | Solver.Cycle_ratio -> Stern_brocot.minimum_cycle_ratio
          in
          [ ("exact", None, run) ]
        | Request.Auto | Request.Approx ->
          List.map
            (fun (a, b) -> (Registry.name a, b, runner_of a))
            (auto_portfolio g_min)
      in
      (* each component task gets its own Stats.t and Budget.t — no
         mutable state crosses a domain boundary.  The pool is also
         handed into the solve so Howard can chunk its improvement
         sweep inside one giant component; the budget stays safe there
         because Howard ticks it on the coordinating domain only, never
         from a chunk task *)
      let solve_component (run : Registry.exact_solver) iter_budget ?pool
          (sp : Scc.subproblem) =
        let sub_stats = Stats.create () in
        let budget =
          match (iter_budget, deadline_at) with
          | None, None -> None
          | _ ->
            Some
              (Budget.create ?max_iterations:iter_budget ~now:t.now
                 ?deadline_at ())
        in
        let lambda, cycle = run ~stats:sub_stats ?budget ?pool sp.Scc.sub in
        (lambda, List.map (fun a -> sp.Scc.arc_of_sub.(a)) cycle, sub_stats)
      in
      let attempt (_name, iter_budget, run) =
        let results =
          match inner_pool with
          | Some p when List.length subs > 1 && Executor.jobs p > 1 ->
            (* same two-level arbitration as Solver.solve: a component
               only nests the chunked sweep if the fan-out leaves
               workers idle or it holds at least half the cyclic arcs *)
            let total_arcs =
              List.fold_left (fun acc sp -> acc + Digraph.m sp.Scc.sub) 0 subs
            in
            let saturated = List.length subs >= Executor.jobs p in
            subs
            |> List.map (fun sp ->
                   let pool =
                     if
                       (not saturated)
                       || 2 * Digraph.m sp.Scc.sub >= total_arcs
                     then Some p
                     else None
                   in
                   Executor.async p (fun () ->
                       solve_component run iter_budget ?pool sp))
            |> List.map (fun fut ->
                   try Ok (Executor.await p fut)
                   with Budget.Exceeded c -> Error c)
          | _ ->
            List.map
              (fun sp ->
                try Ok (solve_component run iter_budget ?pool:inner_pool sp)
                with Budget.Exceeded c -> Error c)
              subs
        in
        (* join: fold in component order with Solver.solve's exact
           tie-breaking; merge the per-domain counters *)
        let best = ref None in
        let stats = ref (Stats.create ()) in
        let ncomp = ref 0 in
        let err = ref None in
        List.iter
          (function
            | Ok (lambda, cycle, s) ->
              incr ncomp;
              stats := Stats.merge !stats s;
              (match !best with
              | Some (bl, _) when Ratio.leq bl lambda -> ()
              | _ -> best := Some (lambda, cycle))
            | Error c -> (
              match (!err, c) with
              | Some Budget.Deadline, _ -> ()
              | _, Budget.Deadline -> err := Some Budget.Deadline
              | None, c -> err := Some c
              | Some _, _ -> ()))
          results;
        Telemetry.record_ops tel !stats;
        match !err with
        | None -> `Ok (Option.get !best, !ncomp)
        | Some Budget.Deadline -> `Deadline (Option.map fst !best)
        | Some Budget.Iterations -> `Blowout
      in
      let rec go attempted fallbacks = function
        | [] ->
          (* unreachable with the shipped portfolios (the terminal
             entry is unbudgeted) but a sound answer if one is built *)
          Timeout { partial = None; attempted = List.rev attempted }
        | ((name, _, _) as step) :: rest -> (
          let t0 = t.now () in
          let verdict = attempt step in
          let wall_ms = (t.now () -. t0) *. 1000.0 in
          match verdict with
          | `Ok ((lambda, cycle), ncomp) ->
            Telemetry.record_run tel name ~wall_ms;
            Solved
              {
                lambda = restore lambda;
                cycle;
                components = ncomp;
                algorithm = name;
                cached = false;
                fallbacks;
                certified = false;
                exact = None;
              }
          | `Blowout ->
            Telemetry.record_blowout tel name ~wall_ms;
            go (name :: attempted) (fallbacks + 1) rest
          | `Deadline partial -> (
            match spec.Request.approx_eps with
            | Some _ ->
              (* the request opted in (approx-eps on an Auto request):
                 the exact lanes missed the deadline, so serve a
                 certified ε-interval instead of a timeout.  The
                 fallback runs undeadlined — the lane is near-linear
                 and bounded, and a second deadline here could only
                 turn a sound answer back into a timeout *)
              solve_approx t ~inner_pool tel req ~deadline_at:None
                ~fallback:true
            | None ->
              Timeout
                {
                  partial = Option.map restore partial;
                  attempted = List.rev (name :: attempted);
                }))
      in
      go [] 0 attempts
    end

(* ------------------------------------------------------------------ *)
(* cache layer                                                         *)
(* ------------------------------------------------------------------ *)

let certify (req : Request.t) lambda cycle =
  Verify.certify ~objective:req.Request.spec.Request.objective
    ~problem:req.Request.spec.Request.problem req.Request.graph lambda cycle

let cert_of_approximate ~lo ~hi ~cycle ~eps ~scale ~components ~tests ~rounds
    ~certified =
  {
    Approx.lo;
    hi;
    witness = cycle;
    eps;
    scale;
    components;
    tests;
    rounds;
    converged = certified;
  }

let recheck_approx (req : Request.t) cert =
  Approx.recheck ~problem:req.Request.spec.Request.problem
    ~objective:req.Request.spec.Request.objective req.Request.graph cert

(* The exact-answer cross-check: on a mode=exact request, recompute λ
   from the witness cycle's integer sums and attach it as the rational
   certificate.  A disagreement (or a float answer more than 1 ulp off
   the certificate) is an engine bug, answered as a rejection rather
   than a wrong certificate. *)
let finish_exact (req : Request.t) outcome =
  match outcome with
  | Solved s when req.Request.spec.Request.mode = Request.Exact_answer -> (
    match
      Verify.rational_certificate ~problem:req.Request.spec.Request.problem
        req.Request.graph s.lambda s.cycle
    with
    | Ok cert -> Solved { s with exact = Some cert }
    | Error e -> Rejected e)
  | o -> o

let verify_fresh tel req outcome =
  match outcome with
  | Solved s when req.Request.spec.Request.verify -> (
    match certify req s.lambda s.cycle with
    | Ok () -> Solved { s with certified = true }
    | Error e ->
      ignore tel;
      Rejected ("certificate FAILED: " ^ e))
  | Approximate a when req.Request.spec.Request.verify -> (
    match
      recheck_approx req
        (cert_of_approximate ~lo:a.lo ~hi:a.hi ~cycle:a.cycle ~eps:a.eps
           ~scale:a.scale ~components:a.components ~tests:a.tests
           ~rounds:a.rounds ~certified:a.certified)
    with
    | Ok () -> Approximate { a with verified = true }
    | Error e -> Rejected ("certificate FAILED: " ^ e))
  | o -> o

(* A fresh solve plus verification, run inside an executor task.
   Returns the outcome together with this request's telemetry delta
   (merged by the coordinator at the join, in request order).
   [inner_pool] is the intra-request parallelism verdict passed on to
   {!solve_fresh}. *)
let solve_task t ~inner_pool req () =
  let tel = Telemetry.create () in
  let t0 = t.now () in
  let outcome =
    verify_fresh tel req (finish_exact req (solve_fresh t ~inner_pool tel req))
  in
  tel.Telemetry.wall_ms <- (t.now () -. t0) *. 1000.0;
  (outcome, tel)

(* Classify a response into the deterministic coordinator counters;
   when tracing is on, also drop a cache hit/miss instant on the
   timeline. *)
let count_outcome tel = function
  | Solved s ->
    tel.Telemetry.solved <- tel.Telemetry.solved + 1;
    if s.exact <> None then tel.Telemetry.exact <- tel.Telemetry.exact + 1;
    if !Obs.enabled_flag then
      Trace.instant (if s.cached then sp_cache_hit else sp_cache_miss);
    if s.cached then tel.Telemetry.cache_hits <- tel.Telemetry.cache_hits + 1
    else tel.Telemetry.cache_misses <- tel.Telemetry.cache_misses + 1
  | Approximate a ->
    tel.Telemetry.approx <- tel.Telemetry.approx + 1;
    if !Obs.enabled_flag then
      Trace.instant (if a.cached then sp_cache_hit else sp_cache_miss);
    if a.cached then tel.Telemetry.cache_hits <- tel.Telemetry.cache_hits + 1
    else tel.Telemetry.cache_misses <- tel.Telemetry.cache_misses + 1
  | Acyclic ->
    tel.Telemetry.acyclic <- tel.Telemetry.acyclic + 1;
    tel.Telemetry.cache_misses <- tel.Telemetry.cache_misses + 1
  | Timeout _ ->
    tel.Telemetry.timeouts <- tel.Telemetry.timeouts + 1;
    tel.Telemetry.cache_misses <- tel.Telemetry.cache_misses + 1
  | Rejected _ ->
    tel.Telemetry.rejected <- tel.Telemetry.rejected + 1;
    tel.Telemetry.cache_misses <- tel.Telemetry.cache_misses + 1

let entry_of_solved lambda cycle components algorithm cert =
  E_exact
    { e_lambda = lambda; e_cycle = cycle; e_components = components;
      e_algorithm = algorithm; e_cert = cert }

(* The cacheable image of an outcome.  Deadline-fallback certificates
   are NOT cached: their key is the Auto one, and a later request with
   the same key but a workable deadline (or none) deserves the exact
   answer the portfolio can then produce. *)
let entry_of_outcome = function
  | Solved s when not s.cached ->
    Some (entry_of_solved s.lambda s.cycle s.components s.algorithm s.exact)
  | Approximate a when (not a.cached) && not a.fallback ->
    Some
      (E_approx
         {
           a_lo = a.lo;
           a_hi = a.hi;
           a_cycle = a.cycle;
           a_eps = a.eps;
           a_scale = a.scale;
           a_components = a.components;
           a_tests = a.tests;
           a_rounds = a.rounds;
           a_converged = a.certified;
         })
  | _ -> None

(* Serve a request from a cache entry.  With [verify] the entry is
   re-certified against the request's actual graph — which doubles as
   a fingerprint-collision guard: a failing certificate falls through
   to a fresh solve and is counted as a collision, never served. *)
let from_cache tel (req : Request.t) entry =
  let verify = req.Request.spec.Request.verify in
  match entry with
  | E_exact e ->
    let serve certified =
      Some
        (Solved
           {
             lambda = e.e_lambda;
             cycle = e.e_cycle;
             components = e.e_components;
             algorithm = e.e_algorithm;
             cached = true;
             fallbacks = 0;
             certified;
             exact = e.e_cert;
           })
    in
    if verify then
      match certify req e.e_lambda e.e_cycle with
      | Ok () -> serve true
      | Error _ ->
        tel.Telemetry.collisions <- tel.Telemetry.collisions + 1;
        None
    else serve false
  | E_approx a ->
    let serve verified =
      Some
        (Approximate
           {
             lo = a.a_lo;
             hi = a.a_hi;
             cycle = a.a_cycle;
             eps = a.a_eps;
             scale = a.a_scale;
             components = a.a_components;
             tests = a.a_tests;
             rounds = a.a_rounds;
             certified = a.a_converged;
             cached = true;
             fallback = false;
             verified;
           })
    in
    if verify then
      match
        recheck_approx req
          (cert_of_approximate ~lo:a.a_lo ~hi:a.a_hi ~cycle:a.a_cycle
             ~eps:a.a_eps ~scale:a.a_scale ~components:a.a_components
             ~tests:a.a_tests ~rounds:a.a_rounds ~certified:a.a_converged)
      with
      | Ok () -> serve true
      | Error _ ->
        tel.Telemetry.collisions <- tel.Telemetry.collisions + 1;
        None
    else serve false

let cache_insert t key outcome =
  match entry_of_outcome outcome with
  | Some e -> Lru.add t.cache key e
  | None -> ()

(* ------------------------------------------------------------------ *)
(* single-request front door (the serve path)                          *)
(* ------------------------------------------------------------------ *)

let solve t (req : Request.t) =
  (* tagged with the propagated cluster trace id (0 = standalone, which
     records exactly the untagged span of old) *)
  if !Obs.enabled_flag then
    Trace.begin_span_id sp_request req.Request.spec.Request.trace;
  let t0 = t.now () in
  let tel = Telemetry.create () in
  tel.Telemetry.requests <- 1;
  let key = Request.key req in
  let outcome =
    match Option.bind (Lru.find t.cache key) (from_cache tel req) with
    | Some o -> o
    | None ->
      (* a lone request is the only client: intra-request parallelism
         gets the whole pool *)
      let outcome, delta = solve_task t ~inner_pool:(Some t.exec) req () in
      Telemetry.add tel delta;
      cache_insert t key outcome;
      outcome
  in
  count_outcome tel outcome;
  tel.Telemetry.wall_ms <- (t.now () -. t0) *. 1000.0;
  Telemetry.add t.telemetry tel;
  let wall_ms = (t.now () -. t0) *. 1000.0 in
  Metrics.observe t.latency wall_ms;
  if !Obs.enabled_flag then
    Trace.end_span_id sp_request req.Request.spec.Request.trace;
  {
    id = req.Request.id;
    path = req.Request.spec.Request.path;
    outcome;
    wall_ms;
  }

(* ------------------------------------------------------------------ *)
(* batch front door                                                    *)
(* ------------------------------------------------------------------ *)

(* Requests are deduplicated by cache key before scheduling: the first
   occurrence of each key is solved (in parallel across the pool), and
   every later occurrence is served from that in-flight result.  This
   makes the hit/miss sequence — and therefore the whole output — a
   function of the request list alone, independent of --jobs, which is
   what lets the cram tests diff the jobs=1 and jobs=4 outputs. *)
let run_batch t (reqs : Request.t list) =
  let seen : (Request.key, unit) Hashtbl.t = Hashtbl.create 64 in
  (* first pass: classify every request (dup / cache hit / miss)
     WITHOUT scheduling, so the miss count is known before the first
     task is queued *)
  let classified =
    List.map
      (fun req ->
        let key = Request.key req in
        if Hashtbl.mem seen key then (req, key, `Dup)
        else
          match Lru.find t.cache key with
          | Some e -> (req, key, `Cache e)
          | None ->
            Hashtbl.replace seen key ();
            (req, key, `Miss))
      reqs
  in
  (* batch-vs-intra-solve arbitration: with at least [jobs] distinct
     misses the batch fan-out alone saturates the pool, so each task
     runs its request serially — nested per-SCC or sweep-chunk tasks
     would only contend for the same workers.  A small batch (fewer
     misses than workers) lets each request keep the pool for its own
     component fan-out and giant-SCC sweep chunking. *)
  let misses = Hashtbl.length seen in
  let inner_pool =
    if misses >= Executor.jobs t.exec then None else Some t.exec
  in
  (* second pass: schedule the first occurrence of each key *)
  let pending :
      (Request.key, (outcome * Telemetry.t) Executor.future) Hashtbl.t =
    Hashtbl.create 64
  in
  let plan =
    List.map
      (fun (req, key, kind) ->
        match kind with
        | `Miss ->
          let fut = Executor.async t.exec (solve_task t ~inner_pool req) in
          Hashtbl.replace pending key fut;
          (req, key, `First fut)
        | `Dup -> (req, key, `Dup)
        | `Cache e -> (req, key, `Cache e))
      classified
  in
  (* collect in request order; merge telemetry deltas at the join *)
  let resolved : (Request.key, outcome) Hashtbl.t = Hashtbl.create 64 in
  let responses =
    List.map
      (fun (req, key, kind) ->
        let t0 = t.now () in
        let tel = Telemetry.create () in
        tel.Telemetry.requests <- 1;
        let outcome =
          match kind with
          | `First fut ->
            let outcome, delta = Executor.await t.exec fut in
            Telemetry.add tel delta;
            cache_insert t key outcome;
            Hashtbl.replace resolved key outcome;
            outcome
          | `Dup -> (
            (* only a cacheable result is mirrored to duplicates: a
               timeout, rejection or fallback certificate is a property
               of the *first* request (its deadline), not of the key,
               so later occurrences solve on their own terms *)
            match entry_of_outcome (Hashtbl.find resolved key) with
            | Some e -> (
              match from_cache tel req e with
              | Some o -> o
              | None ->
                (* verify-on-hit failed: impossible for a genuine
                   duplicate, but fall back to a fresh solve *)
                let outcome, delta = solve_task t ~inner_pool req () in
                Telemetry.add tel delta;
                outcome)
            | None ->
              let outcome, delta = solve_task t ~inner_pool req () in
              Telemetry.add tel delta;
              cache_insert t key outcome;
              Hashtbl.replace resolved key outcome;
              outcome)
          | `Cache e -> (
            match from_cache tel req e with
            | Some o -> o
            | None ->
              let outcome, delta = solve_task t ~inner_pool req () in
              Telemetry.add tel delta;
              cache_insert t key outcome;
              outcome)
        in
        count_outcome tel outcome;
        Telemetry.add t.telemetry tel;
        let wall_ms = (t.now () -. t0) *. 1000.0 in
        Metrics.observe t.latency wall_ms;
        {
          id = req.Request.id;
          path = req.Request.spec.Request.path;
          outcome;
          wall_ms;
        })
      plan
  in
  responses

(* ------------------------------------------------------------------ *)
(* response rendering                                                  *)
(* ------------------------------------------------------------------ *)

let response_line ?(wall = false) r =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "req=%d file=%s" r.id r.path);
  (match r.outcome with
  | Solved s ->
    Buffer.add_string b
      (Printf.sprintf " status=ok lambda=%s float=%.6f"
         (Ratio.to_string s.lambda)
         (Ratio.to_float s.lambda));
    (match s.exact with
    | Some cert ->
      Buffer.add_string b
        (Printf.sprintf " lambda_num=%d lambda_den=%d" (Ratio.num cert)
           (Ratio.den cert))
    | None -> ());
    Buffer.add_string b
      (Printf.sprintf " alg=%s components=%d fallbacks=%d cached=%b"
         s.algorithm s.components s.fallbacks s.cached);
    if s.certified then Buffer.add_string b " certificate=ok"
  | Approximate a ->
    Buffer.add_string b
      (Printf.sprintf
         " status=approx lambda_lo=%s lambda_hi=%s lo_float=%.6f \
          hi_float=%.6f eps=%g certified=%b components=%d fallback=%b \
          cached=%b"
         (Ratio.to_string a.lo) (Ratio.to_string a.hi) (Ratio.to_float a.lo)
         (Ratio.to_float a.hi) a.eps a.certified a.components a.fallback
         a.cached);
    if a.verified then Buffer.add_string b " certificate=ok"
  | Acyclic -> Buffer.add_string b " status=acyclic"
  | Timeout { partial; attempted } ->
    Buffer.add_string b
      (Printf.sprintf " status=timeout attempted=%s partial=%s"
         (String.concat "," attempted)
         (match partial with Some l -> Ratio.to_string l | None -> "-"))
  | Rejected msg ->
    Buffer.add_string b (Printf.sprintf " status=rejected msg=%S" msg));
  if wall then Buffer.add_string b (Printf.sprintf " ms=%.2f" r.wall_ms);
  Buffer.contents b

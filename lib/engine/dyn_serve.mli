(** Engine driver for dynamic-graph sessions ([ocr stream]).

    Wraps one {!Dyn.t} with the engine's LRU result cache and
    telemetry.  Query answers are cached under the session's per-epoch
    structural {!Fingerprint}, so update streams that revisit an
    earlier graph (undo, A/B probing, replay) are served without
    re-solving, and hits/misses on the {e dynamic} path show up in the
    same telemetry counters as the batch engine's.  See docs/DYN.md for
    the protocol. *)

type t

val create : ?cache_size:int -> ?journal:(string -> unit) -> Dyn.t -> t
(** [cache_size] (default 256; 0 disables) bounds the per-session
    result cache.  [journal], when given, receives one canonical
    protocol line per applied update and per query — a file sink makes
    an [ocr stream --replay]able journal. *)

val session : t -> Dyn.t
val telemetry : t -> Telemetry.t

val metrics_snapshot : t -> Metrics.t
(** Counters plus the per-query [ocr_solve_latency_ms] histogram
    (recorded on every query, cache hits included, independent of the
    tracing switch) in the same registry shape as
    [Engine.metrics_snapshot]. *)

val metrics_line : t -> string
(** One-line NDJSON metrics digest — the reply to the ["metrics"]
    protocol op, also used by [ocr stream --metrics-every]. *)

val handle : t -> string -> [ `Reply of string | `Quit ]
(** Processes one request line.  Malformed or failing requests yield a
    structured [{"ok":false,...}] reply and leave the session
    untouched — the stream always continues until ["quit"] or EOF. *)

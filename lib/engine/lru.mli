(** Mutex-protected least-recently-used cache (hash table + intrusive
    doubly linked recency list; all operations O(1) expected).

    Keys are compared with structural equality.  A [capacity] of zero
    (or less) disables the cache: {!find} always misses and {!add} is
    a no-op.  Safe to share across domains — every operation holds the
    internal mutex — though the engine funnels all cache traffic
    through its coordinating thread anyway so that hit/miss sequences
    are deterministic. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used on a hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts (or refreshes) the entry as most-recently-used, evicting
    least-recently-used entries while over capacity. *)

val resize : ('k, 'v) t -> int -> unit
(** Changes the capacity in place.  Shrinking evicts from the
    least-recently-used end immediately; a capacity [<= 0] clears the
    cache and disables it (as at {!create}).  Lets a per-process cache
    budget be re-split at runtime — e.g. a cluster dividing one
    [--cache-size] across its workers. *)

(* The serve/stream protocol loops, extracted from bin/main.ml so that
   the CLI, the cluster worker processes and the tests all run the
   same code over explicit channels.  One rule throughout: every
   protocol line is flushed as soon as it is written — a pipe or
   socket peer must never wait on a buffered response. *)

let out_line oc s =
  output_string oc s;
  output_char oc '\n';
  flush oc

let print_telemetry eng oc =
  let s = Format.asprintf "@[<v>%a@]" Telemetry.pp_summary (Engine.telemetry eng) in
  List.iter (fun line -> out_line oc ("# " ^ line)) (String.split_on_char '\n' s)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let solve_line ?wall eng ~id spec =
  match Graph_io.load spec.Request.path with
  | exception (Sys_error e | Failure e) ->
    Printf.sprintf "req=%d file=%s status=error msg=%S" id spec.Request.path e
  | g -> Engine.response_line ?wall (Engine.solve eng (Request.make ~id ~graph:g spec))

let handle_request ?wall eng ~id line =
  match Request.parse_spec line with
  | Error msg -> Printf.sprintf "req=%d status=error msg=%S" id msg
  | Ok spec -> solve_line ?wall eng ~id spec

let serve ?(wall = false) eng ic oc =
  let id = ref 0 in
  try
    while true do
      let line = String.trim (input_line ic) in
      if line = "" || line.[0] = '#' then ()
      else if line = "quit" then raise Exit
      else if line = "telemetry" then print_telemetry eng oc
      else if line = "metrics" then begin
        output_string oc (Metrics.to_prometheus (Engine.metrics_snapshot eng));
        flush oc
      end
      else begin
        match Request.parse_spec line with
        (* historical serve shape: a parse failure answers without a
           request id and does not consume one *)
        | Error msg -> out_line oc (Printf.sprintf "error msg=%S" msg)
        | Ok spec ->
          incr id;
          out_line oc (solve_line ~wall eng ~id:!id spec)
      end
    done
  with End_of_file | Exit -> ()

(* ------------------------------------------------------------------ *)
(* stream                                                              *)
(* ------------------------------------------------------------------ *)

let stream ?metrics_every srv ic oc =
  let handled = ref 0 in
  let handle_line line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then true
    else
      match Dyn_serve.handle srv line with
      | `Reply r ->
        out_line oc r;
        incr handled;
        (match metrics_every with
        | Some n when !handled mod n = 0 -> out_line oc (Dyn_serve.metrics_line srv)
        | _ -> ());
        true
      | `Quit -> false
  in
  try
    let continue = ref true in
    while !continue do
      continue := handle_line (input_line ic)
    done
  with End_of_file -> ()

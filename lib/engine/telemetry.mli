(** Engine telemetry: requests served, cache behavior, per-algorithm
    attempt counts and wall time, portfolio fallbacks, and the merged
    solver operation counters.

    Following the per-domain-instances rule, telemetry records are
    never shared across domains: each solve task produces its own
    delta record, and the coordinating thread combines deltas with
    {!add} (or {!merge}) at the join — in request-id order, so every
    counter is deterministic regardless of the [--jobs] setting.  Wall
    times are the only nondeterministic fields and are deliberately
    excluded from {!pp_summary} (they do appear in {!to_csv} /
    {!to_json}). *)

type alg_counters = {
  mutable runs : int;
  mutable blowouts : int;
  mutable alg_wall_ms : float;
}

type t = {
  mutable requests : int;
  mutable solved : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable acyclic : int;
  mutable timeouts : int;
  mutable rejected : int;
  mutable approx : int;  (** approx-lane answers, direct or deadline fallback *)
  mutable approx_iterations : int;  (** value-iteration rounds in the lane *)
  mutable exact : int;  (** answers carrying an exact rational certificate *)
  mutable fallbacks : int;
  mutable collisions : int;
  mutable wall_ms : float;
  per_alg : (string, alg_counters) Hashtbl.t;
  ops : Stats.t;
}

val create : unit -> t
val record_run : t -> string -> wall_ms:float -> unit
val record_blowout : t -> string -> wall_ms:float -> unit
(** Also counts a portfolio fallback. *)

val record_ops : t -> Stats.t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val merge : t -> t -> t
(** Functional combination into a fresh record. *)

val hit_rate : t -> float
(** [cache_hits / requests]; 0 on an empty record. *)

val pp_summary : Format.formatter -> t -> unit
(** Deterministic counters only (no wall times), one [key=value] group
    per line. *)

val to_csv : t -> string
val to_json : t -> string

(** The engine's request model.

    A request is a graph plus a problem selection — cycle mean or
    cost-to-time ratio, minimize or maximize, a fixed algorithm or
    [Auto] (the deadline/portfolio policy of {!Engine}) — an optional
    per-request deadline, and a verify flag.

    The textual form, one request per line (used by [ocr batch] files
    and the [ocr serve] protocol), is

    {v <graph-file> [key=value ...] v}

    with keys [problem=mean|ratio], [objective=min|max],
    [algorithm=auto|approx|exact|<name>], [mode=float|exact],
    [approx-eps=<float>], [deadline-ms=<float>], [verify=true|false],
    [trace=<id>] (tracing context, stamped by the cluster router);
    omitted keys default to [problem=mean objective=min algorithm=auto
    mode=float verify=false] and no deadline.  [approx-eps] must be
    positive and finite, and is only accepted with [algorithm=approx]
    (the tolerance of the certified lane) or [algorithm=auto] (opting
    the request into the engine's deadline fallback: a certified
    ε-interval instead of a timeout).  [mode=exact] asks for the exact
    rational answer [lambda_num=/lambda_den=] alongside the float; it
    is rejected with [algorithm=approx] or [approx-eps] (an interval
    answer carries no single rational certificate).  Blank lines and
    [#] comments are the caller's concern. *)

type algorithm_choice =
  | Auto
  | Fixed of Registry.algorithm
  | Approx  (** the certified ε-interval lane ({!Registry.lane} "approx") *)
  | Exact
      (** the Stern–Brocot exact lane
          ({!Registry.exact_lane} "exact") *)

val algorithm_choice_name : algorithm_choice -> string

type mode =
  | Float_answer  (** the default: answer [lambda=] as a float *)
  | Exact_answer
      (** additionally answer the exact rational certificate
          [lambda_num=/lambda_den=], cross-checked against the witness
          cycle's integer sums ({!Verify.rational_certificate}) *)

val mode_name : mode -> string

type spec = {
  path : string;  (** graph file, or a label for in-memory requests *)
  problem : Solver.problem;
  objective : Solver.objective;
  algorithm : algorithm_choice;
  mode : mode;
  approx_eps : float option;
      (** tolerance for [Approx] requests and [Auto] deadline fallback;
          [None] means {!Approx.default_eps} where one is needed *)
  deadline_ms : float option;
  verify : bool;
  trace : int;
      (** distributed-tracing context ([trace=<id>] on the wire),
          propagated by the cluster router so worker engine spans
          carry the router's request trace id; 0 = untraced.  Absent
          from {!key}: tracing never changes cache identity. *)
}

val default_spec : string -> spec

val parse_spec : string -> (spec, string) result
(** Parse one request line (without any leading command word). *)

val spec_to_string : spec -> string
(** Round-trips through {!parse_spec}; omits defaulted keys. *)

type t = { id : int; spec : spec; graph : Digraph.t }

val make : id:int -> graph:Digraph.t -> spec -> t

type key = {
  fp : Fingerprint.t;
  kproblem : Solver.problem;
  kobjective : Solver.objective;
  kalgorithm : algorithm_choice;
  kmode : mode;
  keps : float option;
}
(** Cache identity: structural fingerprint × problem × objective ×
    algorithm choice × answer mode × approx tolerance.  The answer
    mode is part of the key so exact answers (which carry a rational
    certificate) never alias float answers.  The deadline and verify
    flag are deliberately excluded — a cached result is served
    regardless of deadline, and verification is re-run per request. *)

val key : t -> key

val problem_name : Solver.problem -> string
val objective_name : Solver.objective -> string

(** The [ocr serve] and [ocr stream] protocol loops as library
    functions over explicit channels.

    [bin/main.ml] used to own these loops, which made them untestable
    and unshareable; now the CLI, the cluster workers and the test
    suite all drive the same code over whatever channel pair they hold
    (stdin/stdout, socketpairs, pipes).  Every protocol line — response,
    error, telemetry, metrics — is followed by an explicit flush, so a
    socket or pipe peer sees each reply as soon as it is produced
    instead of whenever the runtime's buffer happens to fill. *)

val serve : ?wall:bool -> Engine.t -> in_channel -> out_channel -> unit
(** The [ocr serve] line protocol: each input line is a request
    ([<graph-file> key=value ...]); [telemetry] prints counters,
    [metrics] the Prometheus exposition, [quit] or EOF returns.
    Malformed requests and unreadable/corrupt graph files answer a
    structured error line and the session continues. *)

val handle_request : ?wall:bool -> Engine.t -> id:int -> string -> string
(** One request spec line to one response line, under the caller's
    request id: parse failures answer
    [req=<id> status=error msg=...], load failures
    [req=<id> file=<path> status=error msg=...], and everything else
    {!Engine.response_line}.  This is the per-line entry the cluster
    worker multiplexes (the router matches responses to requests by
    FIFO order, so every request line must produce exactly one
    response line). *)

val print_telemetry : Engine.t -> out_channel -> unit
(** The [telemetry] reply: the {!Telemetry.pp_summary} block, one
    [# ]-prefixed line each, flushed. *)

val stream : ?metrics_every:int -> Dyn_serve.t -> in_channel -> out_channel -> unit
(** The [ocr stream] NDJSON loop: one request line, one response line,
    until [quit] or EOF; blank and [#] lines are skipped.  With
    [metrics_every:n], every n-th handled request is followed by one
    NDJSON metrics snapshot line. *)

type algorithm_choice = Auto | Fixed of Registry.algorithm | Approx | Exact

let algorithm_choice_name = function
  | Auto -> "auto"
  | Fixed a -> Registry.name a
  | Approx -> "approx"
  | Exact -> "exact"

type mode = Float_answer | Exact_answer

let mode_name = function Float_answer -> "float" | Exact_answer -> "exact"

type spec = {
  path : string;
  problem : Solver.problem;
  objective : Solver.objective;
  algorithm : algorithm_choice;
  mode : mode;
  approx_eps : float option;
  deadline_ms : float option;
  verify : bool;
  trace : int;
      (* distributed-tracing context propagated by the cluster router
         (0 = untraced).  Deliberately NOT part of [key]: tracing a
         request must not change its cache identity. *)
}

let default_spec path =
  {
    path;
    problem = Solver.Cycle_mean;
    objective = Solver.Minimize;
    algorithm = Auto;
    mode = Float_answer;
    approx_eps = None;
    deadline_ms = None;
    verify = false;
    trace = 0;
  }

type t = { id : int; spec : spec; graph : Digraph.t }

let make ~id ~graph spec = { id; spec; graph }

type key = {
  fp : Fingerprint.t;
  kproblem : Solver.problem;
  kobjective : Solver.objective;
  kalgorithm : algorithm_choice;
  kmode : mode;
  keps : float option;
}

let key r =
  {
    fp = Fingerprint.of_graph r.graph;
    kproblem = r.spec.problem;
    kobjective = r.spec.objective;
    kalgorithm = r.spec.algorithm;
    kmode = r.spec.mode;
    keps = r.spec.approx_eps;
  }

let problem_name = function
  | Solver.Cycle_mean -> "mean"
  | Solver.Cycle_ratio -> "ratio"

let objective_name = function
  | Solver.Minimize -> "min"
  | Solver.Maximize -> "max"

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let parse_kv spec token =
  match String.index_opt token '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" token)
  | Some i ->
    let k = String.sub token 0 i in
    let v = String.sub token (i + 1) (String.length token - i - 1) in
    (match (String.lowercase_ascii k, String.lowercase_ascii v) with
    | ("problem" | "p"), "mean" -> Ok { spec with problem = Solver.Cycle_mean }
    | ("problem" | "p"), "ratio" ->
      Ok { spec with problem = Solver.Cycle_ratio }
    | ("problem" | "p"), _ ->
      Error (Printf.sprintf "problem must be mean or ratio, got %S" v)
    | ("objective" | "obj" | "o"), "min" ->
      Ok { spec with objective = Solver.Minimize }
    | ("objective" | "obj" | "o"), "max" ->
      Ok { spec with objective = Solver.Maximize }
    | ("objective" | "obj" | "o"), _ ->
      Error (Printf.sprintf "objective must be min or max, got %S" v)
    | ("algorithm" | "alg" | "a"), "auto" -> Ok { spec with algorithm = Auto }
    | ("algorithm" | "alg" | "a"), name -> (
      match Registry.of_name name with
      | Some a -> Ok { spec with algorithm = Fixed a }
      | None -> (
        (* lanes register by name at module init: the "approx" interval
           lane (Registry.register_lane) and the "exact" Stern–Brocot
           lane (Registry.register_exact_lane) *)
        match Registry.lane name with
        | Some _ -> Ok { spec with algorithm = Approx }
        | None -> (
          match Registry.exact_lane name with
          | Some _ -> Ok { spec with algorithm = Exact }
          | None ->
            Error
              (Printf.sprintf
                 "unknown algorithm %S (expected auto%s or one of: %s)" v
                 (match Registry.lane_names () @ Registry.exact_lane_names () with
                 | [] -> ""
                 | lanes -> ", " ^ String.concat ", " lanes)
                 (String.concat ", " (List.map Registry.name Registry.all))))))
    | "mode", "float" -> Ok { spec with mode = Float_answer }
    | "mode", "exact" -> Ok { spec with mode = Exact_answer }
    | "mode", _ ->
      Error (Printf.sprintf "mode must be float or exact, got %S" v)
    | ("approx-eps" | "eps"), _ -> (
      match float_of_string_opt v with
      | Some e when Float.is_finite e && e > 0.0 ->
        Ok { spec with approx_eps = Some e }
      | _ ->
        Error
          (Printf.sprintf "approx-eps must be a positive finite float, got %S"
             v))
    | ("deadline-ms" | "deadline"), _ -> (
      match float_of_string_opt v with
      | Some ms when ms >= 0.0 -> Ok { spec with deadline_ms = Some ms }
      | _ -> Error (Printf.sprintf "deadline-ms must be a float >= 0, got %S" v))
    | "verify", ("true" | "yes" | "1") -> Ok { spec with verify = true }
    | "verify", ("false" | "no" | "0") -> Ok { spec with verify = false }
    | "verify", _ ->
      Error (Printf.sprintf "verify must be true or false, got %S" v)
    | "trace", _ -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok { spec with trace = n }
      | _ ->
        Error
          (Printf.sprintf "trace must be a nonnegative integer, got %S" v))
    | _ ->
      Error
        (Printf.sprintf
           "unknown key %S (expected problem, objective, algorithm, mode, \
            approx-eps, deadline-ms, verify or trace)"
           k))

let parse_spec line =
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Error "empty request line"
  | path :: rest ->
    if String.contains path '=' then
      Error (Printf.sprintf "first token must be the graph file, got %S" path)
    else
      let* spec =
        List.fold_left
          (fun acc token ->
            let* spec = acc in
            parse_kv spec token)
          (Ok (default_spec path)) rest
      in
      (* eps only means something where an approximate answer can come
         back: the approx lane itself, or auto's deadline fallback *)
      let* spec =
        match (spec.algorithm, spec.approx_eps) with
        | Fixed a, Some _ ->
          Error
            (Printf.sprintf
               "approx-eps does not apply to exact algorithm %S (use \
                algorithm=approx or algorithm=auto)"
               (Registry.name a))
        | Exact, Some _ ->
          Error
            "approx-eps does not apply to the exact lane (use \
             algorithm=approx or algorithm=auto)"
        | _ -> Ok spec
      in
      (* an exact rational certificate requires a single attained λ*:
         interval answers (the approx lane, or auto's eps deadline
         fallback) carry none, so the combinations are rejected here
         with a structured error rather than failing mid-solve *)
      (match (spec.mode, spec.algorithm, spec.approx_eps) with
      | Exact_answer, Approx, _ ->
        Error
          "mode=exact does not apply to algorithm=approx (an interval \
           answer has no single rational certificate)"
      | Exact_answer, _, Some _ ->
        Error
          "mode=exact does not apply to approx-eps requests (the deadline \
           fallback would answer an interval, not a certificate)"
      | _ -> Ok spec)

let spec_to_string s =
  let opts = [] in
  let opts =
    if s.trace <> 0 then Printf.sprintf "trace=%d" s.trace :: opts else opts
  in
  let opts =
    if s.verify then "verify=true" :: opts else opts
  in
  let opts =
    match s.deadline_ms with
    | Some ms -> Printf.sprintf "deadline-ms=%g" ms :: opts
    | None -> opts
  in
  let opts =
    match s.approx_eps with
    | Some e -> Printf.sprintf "approx-eps=%g" e :: opts
    | None -> opts
  in
  let opts =
    match s.mode with
    | Float_answer -> opts
    | Exact_answer -> "mode=exact" :: opts
  in
  let opts =
    match s.algorithm with
    | Auto -> opts
    | Fixed a -> Printf.sprintf "algorithm=%s" (Registry.name a) :: opts
    | Approx -> "algorithm=approx" :: opts
    | Exact -> "algorithm=exact" :: opts
  in
  let opts =
    match s.objective with
    | Solver.Minimize -> opts
    | Solver.Maximize -> "objective=max" :: opts
  in
  let opts =
    match s.problem with
    | Solver.Cycle_mean -> opts
    | Solver.Cycle_ratio -> "problem=ratio" :: opts
  in
  String.concat " " (s.path :: opts)

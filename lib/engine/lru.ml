type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  mutable capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutex : Mutex.t;
}

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    mutex = Mutex.create ();
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  if t.capacity <= 0 then None
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.table k with
        | None -> None
        | Some node ->
          unlink t node;
          push_front t node;
          Some node.value)

let add t k v =
  if t.capacity > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.table k with
        | Some node ->
          node.value <- v;
          unlink t node;
          push_front t node
        | None ->
          let node = { key = k; value = v; prev = None; next = None } in
          Hashtbl.replace t.table k node;
          push_front t node);
        while Hashtbl.length t.table > t.capacity do
          match t.tail with
          | None -> assert false
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key
        done)

let length t = locked t (fun () -> Hashtbl.length t.table)

let resize t capacity =
  locked t (fun () ->
      t.capacity <- capacity;
      if capacity <= 0 then begin
        Hashtbl.reset t.table;
        t.head <- None;
        t.tail <- None
      end
      else
        while Hashtbl.length t.table > capacity do
          match t.tail with
          | None -> assert false
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key
        done)
